// Command pnetbench regenerates the tables and figures of "Scaling beyond
// packet switch limits with multiple dataplanes" (CoNEXT '22).
//
// Usage:
//
//	pnetbench -list
//	pnetbench -exp fig6a
//	pnetbench -exp all -scale full -seed 7
//	pnetbench -exp fig6c -metrics m.jsonl -trace t.jsonl
//	pnetbench -exp faults -chaos "plane:0@10ms+20ms; poisson:mttf=50ms,mttr=5ms,until=100ms"
//
// Each experiment prints the rows/series of the corresponding paper
// artifact. The default "small" scale shrinks topologies and flow sizes
// to finish quickly; "-scale full" runs the paper's sizes (some take
// hours, like the original artifact). See EXPERIMENTS.md for the mapping
// and recorded results.
//
// Telemetry: -metrics streams JSONL samples (link queue depth and
// utilization, per-plane bytes, engine event rate, flow and solver
// records, final counter snapshot); -trace streams per-packet lifecycle
// events (enqueue/drop/trim/deliver), optionally narrowed to specific
// flows with -trace-flow. Both accept a file path or "-" for stdout.
// -report writes a RunSummary JSON (FCT percentiles, plane shares,
// solver/engine aggregates) for pnetstat summary/diff/gate with no JSONL
// round-trip. -spans turns on latency attribution (per-flow FCT
// decomposition into queueing/serialization/propagation/stall
// components) and the event-loop flight recorder behind `pnetstat
// attribution` and `pnetstat profile`. -fingerprint folds every fired
// event into rolling per-plane determinism hash chains, checkpointed
// every -fingerprint-epoch events into the metrics stream / report;
// -fingerprint-journal additionally streams one record per folded event
// for `pnetstat divergence` to localize the exact first divergent
// event. -pprof serves net/http/pprof on the given address for live
// profiling of long runs. See README.md "Telemetry" and "Analyzing
// runs" for the schemas.
//
// Parallelism: -workers N caps how many independent sweep cells run
// concurrently (0 = one per core, 1 = serial). Every cell owns its own
// engine and RNG, so tables are byte-identical at any worker count; the
// run header and footer on stderr record the effective width and total
// wall time. See DESIGN.md "Parallel execution". -shards N additionally
// parallelizes INSIDE each packet simulation: the event loop splits into
// one shard per dataplane plus a host shard, advancing under conservative
// lookahead windows (-lookahead overrides the default, the host-ToR
// propagation delay). Output — tables, reports, fingerprints — stays
// byte-identical at any shard count; -trace is the one exception and is
// rejected with -shards > 1. -host-shards N further splits the host
// boundary of a sharded run into N per-host sub-shards that fire inside
// the same windows as the plane shards, cracking the serial host-shard
// bottleneck; output stays byte-identical at any (shards, host-shards)
// combination. -placement chooses how hosts and planes are packed onto
// those shards: "rr" (the default round-robin), "balanced" (static LPT
// bin-packing on workload weights), or a placement JSON written by
// `pnetstat profile -emit-placement` replaying a profiled run's measured
// occupancy as exact weights. Placement moves work between engines,
// never the committed event order, so output stays byte-identical at
// every placement. See DESIGN.md "Plane-sharded PDES", "Host
// sub-sharding", and "Load-balanced shard placement".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pnet/internal/chaos"
	"pnet/internal/exp"
	"pnet/internal/obs"
	"pnet/internal/par"
	"pnet/internal/pdes"
	"pnet/internal/report"
	"pnet/internal/sim"
	"pnet/internal/workload"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id to run, or 'all'")
		scale   = flag.String("scale", "small", "small | full")
		seed    = flag.Int64("seed", 1, "random seed")
		list    = flag.Bool("list", false, "list experiments")
		timing  = flag.Bool("time", true, "print wall-clock time per experiment")
		format  = flag.String("format", "table", "table | csv | json")
		metrics = flag.String("metrics", "", "stream metric samples as JSONL to this file ('-' = stdout)")
		trace   = flag.String("trace", "", "stream packet lifecycle events as JSONL to this file ('-' = stdout); -trace-flow narrows it to chosen flows")
		traceFl = flag.String("trace-flow", "", "comma-separated flow IDs to trace; other flows' events are filtered at the sink (requires -trace)")
		spans   = flag.Bool("spans", false, "record latency attribution spans and the event-loop profile (pnetstat attribution / profile)")
		fprint  = flag.Bool("fingerprint", false, "fold every fired event into per-plane determinism hash chains (pnetstat fingerprint / divergence); needs -metrics or -report")
		fpEpoch = flag.Int64("fingerprint-epoch", 0, "events per fingerprint checkpoint (0 = default 65536); requires -fingerprint")
		fpJourn = flag.String("fingerprint-journal", "", "stream one JSONL record per folded event to this file ('-' = stdout) for pnetstat divergence -events-*; requires -fingerprint")
		sample  = flag.Duration("sample", 0, "sampling interval for -metrics/-report (default 10us of sim time)")
		reportF = flag.String("report", "", "write a RunSummary JSON for pnetstat to this file")
		chaosF  = flag.String("chaos", "", "fault script for fault-aware experiments ('help' prints the syntax)")
		pprof   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		workers = flag.Int("workers", 0, "max concurrent sweep cells (0 = GOMAXPROCS, 1 = serial); results are identical either way")
		shards  = flag.Int("shards", 1, "plane shards per packet simulation (1 = serial engine); results are identical at any count")
		hShards = flag.Int("host-shards", 1, "host sub-shards per packet simulation (1 = single host shard); requires -shards > 1; results are identical at any count")
		lookAhd = flag.Duration("lookahead", 0, "conservative PDES window span (0 = the host-ToR propagation delay); requires -shards > 1")
		placeF  = flag.String("placement", "rr", "shard placement: rr | balanced | path to a placement JSON (pnetstat profile -emit-placement); non-rr requires -shards > 1; results are identical at every placement")
	)
	flag.Parse()

	// An explicit -sample must be positive; silently falling back to the
	// default would make the printed series lie about their cadence.
	sampleSet, fpEpochSet, lookAhdSet := false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "sample":
			sampleSet = true
		case "fingerprint-epoch":
			fpEpochSet = true
		case "lookahead":
			lookAhdSet = true
		}
	})
	if sampleSet && *sample <= 0 {
		fmt.Fprintf(os.Stderr, "pnetbench: -sample must be positive, got %v\n", *sample)
		os.Exit(2)
	}
	if err := validateFingerprintFlags(*fprint, *fpEpoch, fpEpochSet, *fpJourn, *metrics, *reportF); err != nil {
		fmt.Fprintf(os.Stderr, "pnetbench: %v\n", err)
		os.Exit(2)
	}
	if err := validateShardFlags(*shards, *hShards, *lookAhd, lookAhdSet, *trace); err != nil {
		fmt.Fprintf(os.Stderr, "pnetbench: %v\n", err)
		os.Exit(2)
	}
	place, err := buildPlacement(*placeF, *shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnetbench: %v\n", err)
		os.Exit(2)
	}

	// Before the -list/empty-exp early return, so a bare
	// `pnetbench -chaos help` prints the syntax, not the experiment list.
	if *chaosF == "help" {
		fmt.Println(chaos.SpecSyntax)
		return
	}

	if *list || *expID == "" {
		fmt.Println("experiments:")
		for _, e := range exp.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *expID == "" && !*list {
			fmt.Println("\nrun one with -exp <id>, or -exp all")
		}
		return
	}

	chaosSpec, err := chaos.ParseSpec(*chaosF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnetbench: %v\n", err)
		os.Exit(2)
	}

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "pnetbench: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}
	par.SetLimit(*workers)

	params := exp.Params{
		Seed: *seed, Chaos: chaosSpec, Workers: *workers,
		// -shards 1 leaves Params.Shards at 1: Driver.Shard treats any
		// value <= 1 as a no-op, so the untouched serial Engine.Run path
		// executes — not a one-shard PDES emulation of it.
		Shards:     *shards,
		HostShards: *hShards,
		Lookahead:  sim.Time(lookAhd.Nanoseconds()) * sim.Nanosecond,
		Placement:  place,
	}
	switch *scale {
	case "small":
		params.Scale = exp.ScaleSmall
	case "full":
		params.Scale = exp.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "pnetbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if *pprof != "" {
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pnetbench: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pnetbench: pprof on http://%s/debug/pprof/\n", *pprof)
	}

	var collector *obs.Collector
	var aggr *report.Aggregator
	var closers []io.Closer
	if *traceFl != "" && *trace == "" {
		fmt.Fprintf(os.Stderr, "pnetbench: -trace-flow requires -trace\n")
		os.Exit(2)
	}
	if *metrics != "" || *trace != "" || *reportF != "" || *spans || *fprint {
		collector = obs.NewCollector()
		if *sample > 0 {
			collector.Interval = sim.Time(sample.Nanoseconds()) * sim.Nanosecond
		}
		if *spans {
			collector.Spans = true
			collector.Profile = true
		}
		if *fprint {
			collector.Fingerprint = true
			collector.FingerprintEpoch = *fpEpoch
			// The journal stream must be wired before any network
			// attaches, which happens inside the experiments' Run.
			if w, c := openSink(*fpJourn); w != nil {
				collector.StreamFingerprintJournal(w)
				if c != nil {
					closers = append(closers, c)
				}
			}
		}
		if *traceFl != "" {
			ids, err := parseFlowIDs(*traceFl)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pnetbench: -trace-flow: %v\n", err)
				os.Exit(2)
			}
			collector.TraceFlows = ids
		}
		if *reportF != "" {
			// Samples reduce into the summary as they are taken; the
			// samplers retain nothing, so -exp all stays memory-bounded.
			aggr = report.NewAggregator()
			collector.Sink = aggr
			collector.DropSamples = true
		}
		if w, c := openSink(*metrics); w != nil {
			collector.StreamMetrics(w)
			if c != nil {
				closers = append(closers, c)
			}
		}
		if w, c := openSink(*trace); w != nil {
			collector.StreamTrace(w)
			if c != nil {
				closers = append(closers, c)
			}
		}
		params.Obs = collector
	}

	var toRun []exp.Experiment
	if *expID == "all" {
		toRun = exp.All()
	} else {
		e, ok := exp.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "pnetbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		toRun = []exp.Experiment{e}
	}

	// Run header: how wide this run may fan out. Cell results are
	// bit-identical at any width, so the numbers are attribution for the
	// wall times below, never a caveat on the tables.
	effWorkers := par.Workers(*workers)
	fmt.Fprintf(os.Stderr, "pnetbench: exp=%s scale=%s seed=%d workers=%d shards=%d host-shards=%d gomaxprocs=%d\n",
		*expID, params.Scale, *seed, effWorkers, *shards, *hShards, runtime.GOMAXPROCS(0))
	if collector != nil {
		// The effective sampling cadence, so nobody has to
		// reverse-engineer it from the t_ps deltas in the stream.
		fmt.Fprintf(os.Stderr, "pnetbench: telemetry sampling every %v of sim time (doubles every 4096 ticks)\n",
			collector.EffectiveInterval())
	}

	runStart := time.Now()
	for _, e := range toRun {
		start := time.Now()
		table := e.Run(params)
		elapsed := time.Since(start)
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n%s", table.ID, table.Title, table.CSV())
			if *timing {
				// Trailing comment row keeps the CSV parseable while
				// preserving the timing line.
				fmt.Printf("# %s in %v at scale %s\n", e.ID, elapsed.Round(time.Millisecond), params.Scale)
			}
			fmt.Println()
		case "json":
			fmt.Println(table.JSON(elapsed.Seconds()))
		default:
			fmt.Println(table.String())
			if *timing {
				fmt.Printf("(%s in %v at scale %s)\n\n", e.ID, elapsed.Round(time.Millisecond), params.Scale)
			}
		}
	}

	fmt.Fprintf(os.Stderr, "pnetbench: total wall time %v (workers=%d gomaxprocs=%d)\n",
		time.Since(runStart).Round(time.Millisecond), effWorkers, runtime.GOMAXPROCS(0))

	if *reportF != "" {
		// Summarize before Close: the collector's samplers and records
		// stay valid, and the summary does not depend on the streams.
		// Shards stays 0 (omitted) for serial runs so reports remain
		// byte-compatible with pre-sharding baselines.
		shardsMeta := 0
		if *shards > 1 {
			shardsMeta = *shards
		}
		// Like Shards: omitted (0) unless the run actually sub-sharded, so
		// reports stay byte-compatible with pre-sub-sharding baselines.
		hostShardsMeta := 0
		if *hShards > 1 {
			hostShardsMeta = *hShards
		}
		// Omitted ("") for the default round-robin so reports stay
		// byte-compatible with placement-unaware baselines.
		placementMeta := ""
		if *placeF != "" && *placeF != "rr" {
			placementMeta = *placeF
		}
		summary := aggr.Summarize(collector, report.Meta{
			Exp:         *expID,
			Scale:       params.Scale.String(),
			Seed:        *seed,
			Created:     time.Now().UTC().Format(time.RFC3339),
			Workers:     effWorkers,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Shards:      shardsMeta,
			HostShards:  hostShardsMeta,
			LookaheadPs: int64(params.Lookahead),
			Placement:   placementMeta,
		})
		if summary.Profile != nil {
			// Stamp the run's actual pool occupancy into the profile so
			// `pnetstat profile` can say how much of the machine the
			// cell-level parallelism already used.
			st := par.PoolStats()
			summary.Profile.PoolLimit = st.Limit
			summary.Profile.PoolPeak = st.Peak
			summary.Profile.PoolTasks = st.Tasks
		}
		b, err := json.MarshalIndent(summary, "", "  ")
		if err == nil {
			err = os.WriteFile(*reportF, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnetbench: report: %v\n", err)
			os.Exit(1)
		}
	}
	if collector != nil {
		if err := collector.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "pnetbench: telemetry: %v\n", err)
			os.Exit(1)
		}
	}
	for _, c := range closers {
		if err := c.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "pnetbench: telemetry: %v\n", err)
			os.Exit(1)
		}
	}
}

// validateFingerprintFlags rejects -fingerprint combinations that would
// silently do nothing or lie about cadence. epochSet says whether
// -fingerprint-epoch appeared on the command line at all (the zero
// default is valid and means "use the built-in cadence").
func validateFingerprintFlags(fingerprint bool, epoch int64, epochSet bool, journal, metrics, reportF string) error {
	if epochSet && epoch <= 0 {
		return fmt.Errorf("-fingerprint-epoch must be positive, got %d", epoch)
	}
	if epochSet && !fingerprint {
		return fmt.Errorf("-fingerprint-epoch requires -fingerprint")
	}
	if journal != "" && !fingerprint {
		return fmt.Errorf("-fingerprint-journal requires -fingerprint")
	}
	if fingerprint && metrics == "" && reportF == "" {
		return fmt.Errorf("-fingerprint needs a sink for the checkpoints: add -metrics or -report")
	}
	return nil
}

// validateShardFlags rejects -shards/-host-shards/-lookahead combinations
// that would silently do nothing or change observable behavior.
// lookaheadSet says whether -lookahead appeared on the command line at
// all (the zero default is valid and means "use the propagation delay").
// -host-shards only means anything inside a sharded run, so it requires
// -shards > 1. -trace is incompatible with sharding: trace events are
// emitted from concurrent shard loops, so their interleaving in the
// stream is unspecified even though the simulation itself stays
// bit-identical.
func validateShardFlags(shards, hostShards int, lookahead time.Duration, lookaheadSet bool, trace string) error {
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	if hostShards < 1 {
		return fmt.Errorf("-host-shards must be >= 1, got %d", hostShards)
	}
	if hostShards > 1 && shards <= 1 {
		return fmt.Errorf("-host-shards requires -shards > 1")
	}
	if lookaheadSet && lookahead <= 0 {
		return fmt.Errorf("-lookahead must be positive, got %v", lookahead)
	}
	if lookaheadSet && shards <= 1 {
		return fmt.Errorf("-lookahead requires -shards > 1")
	}
	if shards > 1 && trace != "" {
		return fmt.Errorf("-trace is not supported with -shards > 1: packet events would interleave nondeterministically in the stream")
	}
	return nil
}

// buildPlacement resolves the -placement flag. "rr" (or "") is the
// default round-robin and needs no sharding; "balanced" turns on the
// static LPT planner; anything else is read as a path to a placement
// JSON written by `pnetstat profile -emit-placement` and strictly
// validated up front, so a bad file fails the run before any simulation
// starts rather than mid-experiment. Non-default placements only mean
// anything inside a sharded run, so they require -shards > 1.
func buildPlacement(placement string, shards int) (workload.Placement, error) {
	switch placement {
	case "", workload.PlaceRR:
		return workload.Placement{}, nil
	}
	if shards <= 1 {
		return workload.Placement{}, fmt.Errorf("-placement %s requires -shards > 1", placement)
	}
	if placement == workload.PlaceBalanced {
		return workload.Placement{Mode: workload.PlaceBalanced}, nil
	}
	pf, err := pdes.LoadPlacementFile(placement)
	if err != nil {
		return workload.Placement{}, err
	}
	return workload.Placement{Mode: workload.PlaceFile, File: pf, Path: placement}, nil
}

// parseFlowIDs parses the -trace-flow comma list.
func parseFlowIDs(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad flow id %q", part)
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no flow ids in %q", s)
	}
	return out, nil
}

// openSink resolves a -metrics/-trace destination: "" = off, "-" =
// stdout (not closed), anything else = created file (returned as closer).
func openSink(path string) (io.Writer, io.Closer) {
	switch path {
	case "":
		return nil, nil
	case "-":
		return os.Stdout, nil
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnetbench: %v\n", err)
		os.Exit(1)
	}
	return f, f
}
