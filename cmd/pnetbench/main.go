// Command pnetbench regenerates the tables and figures of "Scaling beyond
// packet switch limits with multiple dataplanes" (CoNEXT '22).
//
// Usage:
//
//	pnetbench -list
//	pnetbench -exp fig6a
//	pnetbench -exp all -scale full -seed 7
//
// Each experiment prints the rows/series of the corresponding paper
// artifact. The default "small" scale shrinks topologies and flow sizes
// to finish quickly; "-scale full" runs the paper's sizes (some take
// hours, like the original artifact). See EXPERIMENTS.md for the mapping
// and recorded results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pnet/internal/exp"
)

func main() {
	var (
		expID  = flag.String("exp", "", "experiment id to run, or 'all'")
		scale  = flag.String("scale", "small", "small | full")
		seed   = flag.Int64("seed", 1, "random seed")
		list   = flag.Bool("list", false, "list experiments")
		timing = flag.Bool("time", true, "print wall-clock time per experiment")
		format = flag.String("format", "table", "table | csv")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("experiments:")
		for _, e := range exp.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *expID == "" && !*list {
			fmt.Println("\nrun one with -exp <id>, or -exp all")
		}
		return
	}

	params := exp.Params{Seed: *seed}
	switch *scale {
	case "small":
		params.Scale = exp.ScaleSmall
	case "full":
		params.Scale = exp.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "pnetbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	var toRun []exp.Experiment
	if *expID == "all" {
		toRun = exp.All()
	} else {
		e, ok := exp.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "pnetbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		toRun = []exp.Experiment{e}
	}

	for _, e := range toRun {
		start := time.Now()
		table := e.Run(params)
		if *format == "csv" {
			fmt.Printf("# %s: %s\n%s\n", table.ID, table.Title, table.CSV())
		} else {
			fmt.Println(table.String())
		}
		if *timing && *format != "csv" {
			fmt.Printf("(%s in %v at scale %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond), params.Scale)
		}
	}
}
