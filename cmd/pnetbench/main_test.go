package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFingerprintFlags(t *testing.T) {
	cases := []struct {
		name        string
		fingerprint bool
		epoch       int64
		epochSet    bool
		journal     string
		metrics     string
		report      string
		wantErr     string // "" = valid
	}{
		{name: "off by default"},
		{name: "fingerprint with metrics", fingerprint: true, metrics: "m.jsonl"},
		{name: "fingerprint with report", fingerprint: true, report: "r.json"},
		{name: "explicit epoch", fingerprint: true, epoch: 1024, epochSet: true, metrics: "m.jsonl"},
		{name: "journal with fingerprint", fingerprint: true, journal: "j.jsonl", metrics: "m.jsonl"},
		{name: "zero epoch", fingerprint: true, epoch: 0, epochSet: true, metrics: "m.jsonl",
			wantErr: "-fingerprint-epoch must be positive"},
		{name: "negative epoch", fingerprint: true, epoch: -5, epochSet: true, metrics: "m.jsonl",
			wantErr: "-fingerprint-epoch must be positive"},
		{name: "epoch without fingerprint", epoch: 1024, epochSet: true, metrics: "m.jsonl",
			wantErr: "-fingerprint-epoch requires -fingerprint"},
		{name: "journal without fingerprint", journal: "j.jsonl",
			wantErr: "-fingerprint-journal requires -fingerprint"},
		{name: "fingerprint without sink", fingerprint: true,
			wantErr: "-fingerprint needs a sink"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFingerprintFlags(c.fingerprint, c.epoch, c.epochSet, c.journal, c.metrics, c.report)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not contain %q", err, c.wantErr)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Errorf("error is not one line: %q", err)
			}
		})
	}
}

func TestValidateShardFlags(t *testing.T) {
	cases := []struct {
		name         string
		shards       int
		hostShards   int
		lookahead    time.Duration
		lookaheadSet bool
		trace        string
		wantErr      string // "" = valid
	}{
		{name: "serial default", shards: 1, hostShards: 1},
		{name: "sharded", shards: 4, hostShards: 1},
		{name: "sharded with lookahead", shards: 4, hostShards: 1, lookahead: 500 * time.Nanosecond, lookaheadSet: true},
		{name: "serial with trace", shards: 1, hostShards: 1, trace: "t.jsonl"},
		{name: "host sub-sharded", shards: 4, hostShards: 4},
		{name: "host sub-sharded two", shards: 2, hostShards: 2},
		{name: "zero shards", shards: 0, hostShards: 1,
			wantErr: "-shards must be >= 1"},
		{name: "negative shards", shards: -2, hostShards: 1,
			wantErr: "-shards must be >= 1"},
		{name: "zero host shards", shards: 4, hostShards: 0,
			wantErr: "-host-shards must be >= 1"},
		{name: "negative host shards", shards: 4, hostShards: -3,
			wantErr: "-host-shards must be >= 1"},
		{name: "host shards without shards", shards: 1, hostShards: 2,
			wantErr: "-host-shards requires -shards > 1"},
		{name: "zero lookahead", shards: 4, hostShards: 1, lookahead: 0, lookaheadSet: true,
			wantErr: "-lookahead must be positive"},
		{name: "negative lookahead", shards: 4, hostShards: 1, lookahead: -time.Microsecond, lookaheadSet: true,
			wantErr: "-lookahead must be positive"},
		{name: "lookahead without shards", shards: 1, hostShards: 1, lookahead: time.Microsecond, lookaheadSet: true,
			wantErr: "-lookahead requires -shards > 1"},
		{name: "trace with shards", shards: 2, hostShards: 1, trace: "t.jsonl",
			wantErr: "-trace is not supported with -shards > 1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateShardFlags(c.shards, c.hostShards, c.lookahead, c.lookaheadSet, c.trace)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not contain %q", err, c.wantErr)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Errorf("error is not one line: %q", err)
			}
		})
	}
}
