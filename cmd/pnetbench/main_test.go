package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pnet/internal/workload"
)

func TestValidateFingerprintFlags(t *testing.T) {
	cases := []struct {
		name        string
		fingerprint bool
		epoch       int64
		epochSet    bool
		journal     string
		metrics     string
		report      string
		wantErr     string // "" = valid
	}{
		{name: "off by default"},
		{name: "fingerprint with metrics", fingerprint: true, metrics: "m.jsonl"},
		{name: "fingerprint with report", fingerprint: true, report: "r.json"},
		{name: "explicit epoch", fingerprint: true, epoch: 1024, epochSet: true, metrics: "m.jsonl"},
		{name: "journal with fingerprint", fingerprint: true, journal: "j.jsonl", metrics: "m.jsonl"},
		{name: "zero epoch", fingerprint: true, epoch: 0, epochSet: true, metrics: "m.jsonl",
			wantErr: "-fingerprint-epoch must be positive"},
		{name: "negative epoch", fingerprint: true, epoch: -5, epochSet: true, metrics: "m.jsonl",
			wantErr: "-fingerprint-epoch must be positive"},
		{name: "epoch without fingerprint", epoch: 1024, epochSet: true, metrics: "m.jsonl",
			wantErr: "-fingerprint-epoch requires -fingerprint"},
		{name: "journal without fingerprint", journal: "j.jsonl",
			wantErr: "-fingerprint-journal requires -fingerprint"},
		{name: "fingerprint without sink", fingerprint: true,
			wantErr: "-fingerprint needs a sink"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFingerprintFlags(c.fingerprint, c.epoch, c.epochSet, c.journal, c.metrics, c.report)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not contain %q", err, c.wantErr)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Errorf("error is not one line: %q", err)
			}
		})
	}
}

func TestValidateShardFlags(t *testing.T) {
	cases := []struct {
		name         string
		shards       int
		hostShards   int
		lookahead    time.Duration
		lookaheadSet bool
		trace        string
		wantErr      string // "" = valid
	}{
		{name: "serial default", shards: 1, hostShards: 1},
		{name: "sharded", shards: 4, hostShards: 1},
		{name: "sharded with lookahead", shards: 4, hostShards: 1, lookahead: 500 * time.Nanosecond, lookaheadSet: true},
		{name: "serial with trace", shards: 1, hostShards: 1, trace: "t.jsonl"},
		{name: "host sub-sharded", shards: 4, hostShards: 4},
		{name: "host sub-sharded two", shards: 2, hostShards: 2},
		{name: "zero shards", shards: 0, hostShards: 1,
			wantErr: "-shards must be >= 1"},
		{name: "negative shards", shards: -2, hostShards: 1,
			wantErr: "-shards must be >= 1"},
		{name: "zero host shards", shards: 4, hostShards: 0,
			wantErr: "-host-shards must be >= 1"},
		{name: "negative host shards", shards: 4, hostShards: -3,
			wantErr: "-host-shards must be >= 1"},
		{name: "host shards without shards", shards: 1, hostShards: 2,
			wantErr: "-host-shards requires -shards > 1"},
		{name: "zero lookahead", shards: 4, hostShards: 1, lookahead: 0, lookaheadSet: true,
			wantErr: "-lookahead must be positive"},
		{name: "negative lookahead", shards: 4, hostShards: 1, lookahead: -time.Microsecond, lookaheadSet: true,
			wantErr: "-lookahead must be positive"},
		{name: "lookahead without shards", shards: 1, hostShards: 1, lookahead: time.Microsecond, lookaheadSet: true,
			wantErr: "-lookahead requires -shards > 1"},
		{name: "trace with shards", shards: 2, hostShards: 1, trace: "t.jsonl",
			wantErr: "-trace is not supported with -shards > 1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateShardFlags(c.shards, c.hostShards, c.lookahead, c.lookaheadSet, c.trace)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not contain %q", err, c.wantErr)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Errorf("error is not one line: %q", err)
			}
		})
	}
}

// TestBuildPlacement pins -placement resolution: the rr/balanced modes,
// the -shards > 1 requirement, and the strict placement-file validation —
// every bad file must fail up front with a one-line error that names the
// problem and how to remedy it.
func TestBuildPlacement(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	valid := write("valid.json", `{"version":1,"hosts":[{"host":0,"weight":10},{"host":1,"weight":3}]}`)
	cases := []struct {
		name       string
		placement  string
		shards     int
		wantMode   string // mode of the resolved placement when valid
		wantErr    string // "" = valid
		wantRemedy string // remediation hint the error must carry
	}{
		{name: "rr serial", placement: "rr", shards: 1},
		{name: "rr sharded", placement: "rr", shards: 4},
		{name: "empty means rr", placement: "", shards: 1},
		{name: "balanced", placement: "balanced", shards: 4, wantMode: workload.PlaceBalanced},
		{name: "valid file", placement: valid, shards: 4, wantMode: workload.PlaceFile},
		{name: "balanced without shards", placement: "balanced", shards: 1,
			wantErr: "-placement balanced requires -shards > 1"},
		{name: "file without shards", placement: valid, shards: 1,
			wantErr: "requires -shards > 1"},
		{name: "missing file", placement: filepath.Join(dir, "absent.json"), shards: 4,
			wantErr: "placement file", wantRemedy: "pnetstat profile -emit-placement"},
		{name: "bad json", placement: write("bad.json", `{"version":1,`), shards: 4,
			wantErr: "not valid JSON", wantRemedy: "pnetstat profile -emit-placement"},
		{name: "version mismatch", placement: write("v9.json", `{"version":9,"hosts":[{"host":0,"weight":1}]}`), shards: 4,
			wantErr: "unsupported version 9", wantRemedy: "pnetstat profile -emit-placement"},
		{name: "no hosts", placement: write("nohosts.json", `{"version":1,"hosts":[]}`), shards: 4,
			wantErr: "no host entries"},
		{name: "duplicate host", placement: write("dup.json", `{"version":1,"hosts":[{"host":3,"weight":1},{"host":3,"weight":2}]}`), shards: 4,
			wantErr: "host 3 assigned twice", wantRemedy: "remove the duplicate entry"},
		{name: "negative weight", placement: write("neg.json", `{"version":1,"hosts":[{"host":0,"weight":-4}]}`), shards: 4,
			wantErr: "host 0 has negative weight -4"},
		{name: "pin without header", placement: write("nohdr.json", `{"version":1,"hosts":[{"host":0,"weight":1,"shard":0}]}`), shards: 4,
			wantErr: "host_shards header is unset", wantRemedy: "set host_shards"},
		{name: "pin out of range", placement: write("range.json", `{"version":1,"host_shards":2,"hosts":[{"host":0,"weight":1,"shard":5}]}`), shards: 4,
			wantErr: "outside [0,2)", wantRemedy: "fix the shard field"},
		{name: "duplicate plane", placement: write("dupplane.json", `{"version":1,"hosts":[{"host":0,"weight":1}],"planes":[{"plane":1,"weight":2},{"plane":1,"weight":3}]}`), shards: 4,
			wantErr: "plane 1 assigned twice"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := buildPlacement(c.placement, c.shards)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if got.Mode != c.wantMode {
					t.Errorf("mode = %q, want %q", got.Mode, c.wantMode)
				}
				if c.wantMode == workload.PlaceFile && (got.File == nil || got.Path != c.placement) {
					t.Errorf("file placement not carried: file=%v path=%q", got.File, got.Path)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not contain %q", err, c.wantErr)
			}
			if c.wantRemedy != "" && !strings.Contains(err.Error(), c.wantRemedy) {
				t.Errorf("error %q does not carry the remedy %q", err, c.wantRemedy)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Errorf("error is not one line: %q", err)
			}
		})
	}
}
