// Performance isolation via plane assignment (paper §7).
//
// P-Net's dataplanes share nothing but the hosts, so pinning traffic
// classes to disjoint plane subsets gives strict performance isolation
// with no in-network scheduler: here a bulk-analytics tenant saturates
// planes 0-1 while a latency tenant's RPCs stay untouched on planes 2-3.
//
//	go run ./examples/isolation
package main

import (
	"fmt"
	"log"

	"pnet/internal/metrics"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
	"pnet/internal/workload"
)

func main() {
	set := topo.ScaledJellyfish(12, 4, 100, 21) // 48 hosts, 4 planes
	tp := set.ParallelHomo

	scenario := func(name string, bulkSel, rpcSel workload.Selection, classes bool) {
		d := workload.NewDriver(tp, sim.Config{}, tcp.Config{})
		if classes {
			if err := d.PNet.SetClass("bulk", []int{0, 1}); err != nil {
				log.Fatal(err)
			}
			if err := d.PNet.SetClass("latency", []int{2, 3}); err != nil {
				log.Fatal(err)
			}
		}
		// Bulk tenant: 16 hosts run closed loops of 10 MB transfers.
		hosts := tp.Hosts
		if name != "unloaded" {
			for h := 0; h < 16; h++ {
				src, dst := hosts[h], hosts[(h+11)%len(hosts)]
				var loop func()
				loop = func() {
					if _, err := d.StartFlow(src, dst, 10<<20, bulkSel, nil,
						func(*tcp.Flow) { loop() }); err != nil {
						log.Fatal(err)
					}
				}
				loop()
			}
		}
		// Latency tenant: ping-pong RPCs from every host.
		samples, err := workload.RunRPC(d, workload.RPCConfig{
			ReqBytes: 1500, RespBytes: 1500,
			Rounds: 8, LoopsPerHost: 1,
			Sel:      rpcSel,
			Seed:     5,
			Deadline: sim.Second,
		})
		if err != nil {
			log.Printf("%s: %v (reporting completed samples)", name, err)
		}
		s := metrics.Summarize(samples)
		fmt.Printf("%-18s rpc median %8.2fus   p99 %10.2fus\n",
			name, s.Median*1e6, s.P99*1e6)
	}

	fmt.Println("latency-tenant RPC statistics under a bulk tenant:")
	scenario("unloaded", workload.Selection{}, workload.Selection{Policy: workload.ECMP}, false)
	scenario("shared planes",
		workload.Selection{Policy: workload.ECMP},
		workload.Selection{Policy: workload.ECMP}, false)
	scenario("isolated planes",
		workload.Selection{Policy: workload.ECMP, Class: "bulk"},
		workload.Selection{Policy: workload.ECMP, Class: "latency"}, true)

	fmt.Println("\nWith planes 0-1 reserved for bulk and 2-3 for latency traffic,")
	fmt.Println("the RPC tail returns to its unloaded value — strict isolation")
	fmt.Println("from topology alone, as §7 of the paper proposes.")
}
