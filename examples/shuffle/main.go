// Hadoop-style shuffle on parallel vs serial networks (paper §5.2.2).
//
// A sort job reads input blocks from remote hosts, shuffles buckets
// all-to-all between mappers and reducers, and writes replicated output —
// the three-stage traffic of Figure 12. Parallel networks spread the block
// transfers over their planes and approach the ideal high-bandwidth
// network's completion times.
//
//	go run ./examples/shuffle
package main

import (
	"fmt"
	"log"

	"pnet/internal/metrics"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
	"pnet/internal/workload"
)

func main() {
	set := topo.ScaledJellyfish(16, 4, 100, 11) // 64 hosts, 4 planes

	cfg := workload.ShuffleConfig{
		Mappers:     8,
		Reducers:    8,
		TotalBytes:  256 << 20, // 256 MB sort (scaled from the paper's 100 GB)
		BlockBytes:  8 << 20,   // 8 MB blocks (scaled from 128 MB)
		Concurrency: 4,
		Sel:         workload.Selection{Policy: workload.ECMP},
		Seed:        3,
	}

	nets := []struct {
		name string
		tp   *topo.Topology
	}{
		{"serial low-bw", set.SerialLow},
		{"parallel homogeneous", set.ParallelHomo},
		{"parallel heterogeneous", set.ParallelHetero},
		{"serial high-bw", set.SerialHigh},
	}

	fmt.Printf("%d MB sort, %d mappers + %d reducers, single-path routing\n\n",
		cfg.TotalBytes>>20, cfg.Mappers, cfg.Reducers)
	fmt.Printf("%-24s %14s %14s %14s\n", "network", "read (med)", "shuffle (med)", "write (med)")

	for _, n := range nets {
		d := workload.NewDriver(n.tp, sim.Config{}, tcp.Config{})
		times, err := workload.RunShuffle(d, cfg)
		if err != nil {
			log.Fatalf("%s: %v", n.name, err)
		}
		med := func(xs []float64) string {
			return fmt.Sprintf("%11.2fms", metrics.Summarize(xs).Median*1e3)
		}
		fmt.Printf("%-24s %s %s %s\n", n.name,
			med(times.Read), med(times.Shuffle), med(times.Write))
	}

	fmt.Println("\nThe dense shuffle stage benefits most from parallel planes;")
	fmt.Println("sparse read/write stages also gain from fewer flow collisions.")
}
