// Graceful degradation under failures (paper §5.4 and §3.4).
//
// P-Net hosts observe link status directly and steer flows away from
// broken dataplanes. This example fails an entire plane mid-transfer
// workload, shows the host-side failover, and then sweeps random link
// failures to reproduce the Figure 14 hop-count degradation comparison.
//
//	go run ./examples/failover
package main

import (
	"fmt"

	"pnet/internal/core"
	"pnet/internal/failure"
	"pnet/internal/topo"
)

func main() {
	set := topo.ScaledJellyfish(24, 4, 100, 9) // 96 hosts, 4 planes

	// Part 1: host-side plane failover.
	pn := core.New(set.ParallelHetero)
	src, dst := pn.Topo.Hosts[0], pn.Topo.Hosts[77]

	before, _ := pn.LowLatencyPath(src, dst)
	fmt.Printf("host 0 -> host 77: best path %d hops on plane %d\n",
		before.Len(), before.Plane(pn.Topo.G))

	victim := int(before.Plane(pn.Topo.G))
	pn.MarkPlaneDown(victim)
	fmt.Printf("plane %d marked down (e.g. for a one-plane-at-a-time upgrade)\n", victim)

	after, ok := pn.LowLatencyPath(src, dst)
	if !ok {
		fmt.Println("no path — unexpected in a 4-plane network")
		return
	}
	fmt.Printf("host re-routes instantly: %d hops on plane %d\n",
		after.Len(), after.Plane(pn.Topo.G))
	pn.MarkPlaneUp(victim)

	// Round-robin load balancing skips dead planes too.
	pn.MarkPlaneDown(1)
	fmt.Print("round-robin over remaining planes: ")
	for i := 0; i < 6; i++ {
		p, _ := pn.NextPlane(0)
		fmt.Print(p, " ")
	}
	fmt.Println()
	pn.MarkPlaneUp(1)

	// Part 2: the Figure 14 sweep — average shortest-path hop count as
	// random inter-switch cables fail.
	fmt.Println("\naverage hop count vs random link failures (paper Fig. 14):")
	fmt.Printf("%-26s %8s %8s %8s %8s %8s\n", "network", "0%", "10%", "20%", "30%", "40%")
	cfg := failure.Config{
		Fractions: []float64{0, 0.1, 0.2, 0.3, 0.4},
		Pairs:     800,
		Trials:    3,
		Seed:      4,
	}
	for _, n := range []struct {
		name string
		tp   *topo.Topology
	}{
		{"serial", set.SerialLow},
		{"parallel homogeneous", set.ParallelHomo},
		{"parallel heterogeneous", set.ParallelHetero},
	} {
		pts := failure.HopCountSweep(n.tp, cfg)
		fmt.Printf("%-26s", n.name)
		for _, pt := range pts {
			fmt.Printf(" %8.3f", pt.AvgHops)
		}
		fmt.Println()
	}
	fmt.Println("\nSerial networks lose short paths quickly; the P-Net's extra")
	fmt.Println("planes preserve them (the paper reports +22% hops for serial vs")
	fmt.Println("+3% for a 4-plane homogeneous P-Net at 40% failures).")
}
