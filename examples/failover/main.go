// Graceful degradation under failures (paper §5.4 and §3.4).
//
// P-Net hosts observe link status directly and steer flows away from
// broken dataplanes. This example fails an entire plane mid-transfer
// workload, shows the host-side failover, and then sweeps random link
// failures to reproduce the Figure 14 hop-count degradation comparison.
//
//	go run ./examples/failover
package main

import (
	"fmt"

	"pnet/internal/chaos"
	"pnet/internal/core"
	"pnet/internal/failure"
	"pnet/internal/graph"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
	"pnet/internal/workload"
)

func main() {
	set := topo.ScaledJellyfish(24, 4, 100, 9) // 96 hosts, 4 planes

	// Part 1: host-side plane failover.
	pn := core.New(set.ParallelHetero)
	src, dst := pn.Topo.Hosts[0], pn.Topo.Hosts[77]

	before, _ := pn.LowLatencyPath(src, dst)
	fmt.Printf("host 0 -> host 77: best path %d hops on plane %d\n",
		before.Len(), before.Plane(pn.Topo.G))

	victim := int(before.Plane(pn.Topo.G))
	pn.MarkPlaneDown(victim)
	fmt.Printf("plane %d marked down (e.g. for a one-plane-at-a-time upgrade)\n", victim)

	after, ok := pn.LowLatencyPath(src, dst)
	if !ok {
		fmt.Println("no path — unexpected in a 4-plane network")
		return
	}
	fmt.Printf("host re-routes instantly: %d hops on plane %d\n",
		after.Len(), after.Plane(pn.Topo.G))
	pn.MarkPlaneUp(victim)

	// Round-robin load balancing skips dead planes too.
	pn.MarkPlaneDown(1)
	fmt.Print("round-robin over remaining planes: ")
	for i := 0; i < 6; i++ {
		p, _ := pn.NextPlane(0)
		fmt.Print(p, " ")
	}
	fmt.Println()
	pn.MarkPlaneUp(1)

	// Part 2: the Figure 14 sweep — average shortest-path hop count as
	// random inter-switch cables fail.
	fmt.Println("\naverage hop count vs random link failures (paper Fig. 14):")
	fmt.Printf("%-26s %8s %8s %8s %8s %8s\n", "network", "0%", "10%", "20%", "30%", "40%")
	cfg := failure.Config{
		Fractions: []float64{0, 0.1, 0.2, 0.3, 0.4},
		Pairs:     800,
		Trials:    3,
		Seed:      4,
	}
	for _, n := range []struct {
		name string
		tp   *topo.Topology
	}{
		{"serial", set.SerialLow},
		{"parallel homogeneous", set.ParallelHomo},
		{"parallel heterogeneous", set.ParallelHetero},
	} {
		pts := failure.HopCountSweep(n.tp, cfg)
		fmt.Printf("%-26s", n.name)
		for _, pt := range pts {
			fmt.Printf(" %8.3f", pt.AvgHops)
		}
		fmt.Println()
	}
	fmt.Println("\nSerial networks lose short paths quickly; the P-Net's extra")
	fmt.Println("planes preserve them (the paper reports +22% hops for serial vs")
	fmt.Println("+3% for a 4-plane homogeneous P-Net at 40% failures).")

	// Part 3: the failover measured end to end, with no oracle. A plane
	// dies physically mid-simulation; the hosts only learn of it when
	// their liveness probes fall silent, and the stalled subflow is
	// re-established on the surviving plane at the next timeout.
	fmt.Println("\nkilling a plane mid-simulation (runtime fault injection):")
	ft := topo.FatTreeSet(4, 2, 100).ParallelHomo
	d := workload.NewDriver(ft, sim.Config{}, tcp.Config{StallRTOs: 2})

	mon := core.NewHealthMonitor(d.Eng, d.Net, d.PNet, 0, 1, core.HealthConfig{
		Interval: 100 * sim.Microsecond,
	})
	faultAt := 500 * sim.Microsecond
	var detectedAt, failoverAt sim.Time = -1, -1
	mon.OnChange = func(e core.PlaneEvent) {
		if !e.Up && detectedAt < 0 {
			detectedAt = e.At
			fmt.Printf("  t=%-8v monitor declares plane %d down (detection latency %v)\n",
				e.At, e.Plane, e.At-faultAt)
		}
	}
	mon.Start()

	var sched chaos.Schedule
	sched.PlaneOutage(0, faultAt, 0)
	inj := chaos.NewInjector(d.Eng, d.Net, sched)
	inj.OnEvent = func(e chaos.Event) {
		fmt.Printf("  t=%-8v chaos: %v %s (%d links physically down)\n",
			d.Eng.Now(), e.Kind, e.Target(), inj.LinksDown())
	}
	inj.Arm()

	d.OnRepath = func(f *tcp.Flow, i int, to graph.Path) {
		if failoverAt < 0 {
			failoverAt = d.Eng.Now()
			fmt.Printf("  t=%-8v subflow %d re-established on plane %d (failover latency %v after detection)\n",
				failoverAt, i, to.Plane(ft.G), failoverAt-detectedAt)
		}
	}

	flow, err := d.StartFlow(ft.Hosts[2], ft.Hosts[13], 30000*1500,
		workload.Selection{Policy: workload.KSP, K: 2}, nil, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  t=%-8v 45 MB MPTCP flow starts, one subflow per plane\n", sim.Time(0))
	d.Eng.RunUntil(200 * sim.Millisecond)

	fmt.Printf("  flow done=%v in %v; %d packets blackholed by the dead plane\n",
		flow.Done(), flow.FCT(), d.Net.TotalBlackholed())
	fmt.Println("\nDetection is probe-driven (~3 probe intervals), failover waits for")
	fmt.Println("the stalled subflow's RTO — both measured, neither oracle-assisted.")
}
