// Quickstart: build a 2-plane parallel fat tree, inspect the end-host
// view, route a flow, and measure it in the packet simulator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pnet/internal/core"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
	"pnet/internal/workload"
)

func main() {
	// 1. Build the network set of the paper's evaluation: a serial
	// low-bandwidth fat tree, its 2-plane parallel twin, and the ideal
	// serial high-bandwidth network.
	set := topo.FatTreeSet(4, 2, 100) // k=4 (16 hosts), 2 planes, 100 Gb/s links
	pn := set.ParallelHomo
	fmt.Printf("network %q: %d hosts, %d planes, %.0f Gb/s per host total\n",
		pn.Name, pn.NumHosts(), pn.Planes, pn.HostBandwidth())

	// 2. The end-host control plane: P-Net hosts pick dataplanes and
	// paths themselves.
	host := core.New(pn)
	src, dst := pn.Hosts[0], pn.Hosts[15]

	low, _ := host.LowLatencyPath(src, dst)
	fmt.Printf("low-latency path: %d hops on plane %d\n", low.Len(), low.Plane(pn.G))

	multi := host.HighThroughputPaths(src, dst, 4)
	fmt.Printf("high-throughput interface: %d paths across planes {", len(multi))
	for i, p := range multi {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Print(p.Plane(pn.G))
	}
	fmt.Println("}")

	// 3. The flow-size policy of the paper (§5.1.2): ≤100 MB flows use a
	// single path, ≥1 GB flows go multipath.
	fmt.Printf("paths for a 10 MB flow:  %d (single-path)\n",
		len(host.PathsForFlow(src, dst, 10<<20, 0)))
	fmt.Printf("paths for a  2 GB flow:  %d (MPTCP, 8 per plane)\n",
		len(host.PathsForFlow(src, dst, 2<<30, 0)))

	// 4. Run a 10 MB MPTCP transfer over both planes in the packet
	// simulator and compare with the serial low-bandwidth network.
	run := func(tp *topo.Topology, sel workload.Selection) sim.Time {
		d := workload.NewDriver(tp, sim.Config{}, tcp.Config{})
		var fct sim.Time
		_, err := d.StartFlow(tp.Hosts[0], tp.Hosts[15], 10<<20, sel, nil,
			func(f *tcp.Flow) { fct = f.FCT() })
		if err != nil {
			log.Fatal(err)
		}
		if err := d.MustRunUntil(10*sim.Second, 1); err != nil {
			log.Fatal(err)
		}
		return fct
	}
	serial := run(set.SerialLow, workload.Selection{Policy: workload.Shortest})
	parallel := run(set.ParallelHomo, workload.Selection{Policy: workload.KSP, K: 4})
	fmt.Printf("10 MB flow FCT: serial 1x100G %v, parallel 2x100G (4-way MPTCP) %v (%.2fx speedup)\n",
		serial, parallel, float64(serial)/float64(parallel))
}
