// RPC latency on heterogeneous parallel Jellyfish (paper §5.2.1).
//
// Every host runs ping-pong 1500 B RPCs against random servers on four
// network types. Heterogeneous P-Nets win on latency because, for any
// given pair of hosts, one of the four differently-wired planes often has
// a shorter path — and small RPCs are dominated by per-hop latency.
//
//	go run ./examples/rpclatency
package main

import (
	"fmt"
	"log"

	"pnet/internal/metrics"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
	"pnet/internal/workload"
)

func main() {
	const planes = 4
	set := topo.ScaledJellyfish(24, planes, 100, 42) // 96 hosts

	nets := []struct {
		name string
		tp   *topo.Topology
	}{
		{"serial low-bw (1x100G)", set.SerialLow},
		{"parallel homogeneous (4x100G)", set.ParallelHomo},
		{"parallel heterogeneous (4x100G)", set.ParallelHetero},
		{"serial high-bw (1x400G)", set.SerialHigh},
	}

	fmt.Println("1500B ping-pong RPCs, single-path routing, 96-host Jellyfish")
	fmt.Printf("%-34s %10s %10s %10s\n", "network", "median", "mean", "p99")

	var baseline metrics.Summary
	for i, n := range nets {
		d := workload.NewDriver(n.tp, sim.Config{}, tcp.Config{})
		samples, err := workload.RunRPC(d, workload.RPCConfig{
			ReqBytes:     1500,
			RespBytes:    1500,
			Rounds:       50,
			LoopsPerHost: 1,
			Sel:          workload.Selection{Policy: workload.ECMP},
			Seed:         7,
		})
		if err != nil {
			log.Fatalf("%s: %v", n.name, err)
		}
		s := metrics.Summarize(samples)
		if i == 0 {
			baseline = s
		}
		rel := s.Relative(baseline)
		fmt.Printf("%-34s %9.2fus %9.2fus %9.2fus   (median %.0f%% of serial)\n",
			n.name, s.Median*1e6, s.Mean*1e6, s.P99*1e6, rel.Median*100)
	}

	fmt.Println("\nThe heterogeneous P-Net's shorter per-pair paths cut RPC latency")
	fmt.Println("below even the 4x-faster serial network, because propagation")
	fmt.Println("dominates serialization for small packets (paper Table 2).")
}
