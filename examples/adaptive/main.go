// DARD-style adaptive path selection (paper §3.4's end-host routing).
//
// P-Net hosts see all planes and can route around load instead of hashing
// blindly: this example saturates one plane with a bulk transfer and then
// launches latency-sensitive flows twice — once with ECMP hashing (which
// sometimes collides with the elephant) and once with the adaptive
// selector (which observes per-link load and avoids it).
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"pnet/internal/metrics"
	"pnet/internal/sim"
	"pnet/internal/tcp"
	"pnet/internal/topo"
	"pnet/internal/workload"
)

func main() {
	set := topo.FatTreeSet(4, 2, 100) // 16 hosts, 2 planes
	tp := set.ParallelHomo

	run := func(adaptive bool) []float64 {
		d := workload.NewDriver(tp, sim.Config{}, tcp.Config{})
		sel := workload.NewAdaptiveSelector(d, 8)

		// Elephant on whatever plane hashing gives it.
		if _, err := d.StartFlow(tp.Hosts[0], tp.Hosts[12], 100<<20,
			workload.Selection{Policy: workload.ECMP}, nil, nil); err != nil {
			log.Fatal(err)
		}
		d.Eng.RunUntil(200 * sim.Microsecond) // let load build

		// Eight sequential 100 kB mice between the same endpoints: each
		// decision sees current load (DARD-style schemes need a load
		// view fresher than the decision rate).
		var fcts []float64
		for i := 0; i < 8; i++ {
			n := len(fcts)
			record := func(f *tcp.Flow) { fcts = append(fcts, f.FCT().Seconds()) }
			var err error
			if adaptive {
				_, err = sel.StartFlowAdaptive(tp.Hosts[0], tp.Hosts[12], 100_000, nil, record)
			} else {
				_, err = d.StartFlow(tp.Hosts[0], tp.Hosts[12], 1<<20,
					workload.Selection{Policy: workload.ECMP}, nil, record)
			}
			if err != nil {
				log.Fatal(err)
			}
			deadline := d.Eng.Now() + sim.Second
			for len(fcts) == n && d.Eng.Now() < deadline {
				if !d.Eng.Step() {
					break
				}
			}
		}
		return fcts
	}

	ecmp := metrics.Summarize(run(false))
	adap := metrics.Summarize(run(true))
	fmt.Println("100 kB flow FCTs while an elephant saturates one plane:")
	fmt.Printf("  ECMP hashing:      median %8.1fus   worst %8.1fus\n",
		ecmp.Median*1e6, ecmp.Max*1e6)
	fmt.Printf("  adaptive (DARD):   median %8.1fus   worst %8.1fus\n",
		adap.Median*1e6, adap.Max*1e6)
	fmt.Println("\nThe adaptive selector reads per-link byte counters (the kind of")
	fmt.Println("per-plane statistics §7 says P-Net monitoring must merge) and")
	fmt.Println("steers every mouse onto the idle plane.")
}
